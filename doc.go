// Package repro is a from-scratch Go reproduction of "Adaptive
// Communication Strategies to Achieve the Best Error-Runtime Trade-off in
// Local-Update SGD" (Wang & Joshi, MLSYS 2019).
//
// The implementation lives under internal/: the ADACOMM controller in
// internal/core, the PASGD engine in internal/cluster, the runtime model in
// internal/delaymodel, the theory in internal/bound, and the hand-rolled
// training stack in internal/{tensor,nn,sgd,data,rng}. Executables are
// under cmd/, runnable examples under examples/, and every figure and table
// of the paper's evaluation regenerates via cmd/figures or the benchmark
// harness in bench_test.go at this directory.
//
// Beyond the paper, internal/compress models the communication-VOLUME axis
// of the trade-off: gradient/delta compression (top-k, random-k, QSGD-style
// quantization, with optional error feedback), a size-aware broadcast cost
// D = (latency + bytes/bandwidth) * s(m) in internal/delaymodel, compressed
// delta-averaging in internal/cluster, a compressed parameter-server push
// in internal/paramserver, and a joint (tau, compression-ratio) adaptive
// controller in internal/core. See examples/compression and the
// compression grid in internal/experiments for the error-runtime payoff on
// bandwidth-constrained links.
//
// Compressed decentralized training is CHOCO-SGD (Koloskova et al. 2019):
// under ring gossip, every node keeps estimate vectors x̂_j of itself and
// its ring neighbors, updated ONLY by the compressed messages
// q_j = C(x_j - x̂_j) that cross the wire, and mixes toward the
// neighborhood estimate average with consensus step
// cluster.Config.GossipGamma — no node ever reads state it could not have
// reconstructed from its own traffic (an invariant test hides the replicas
// behind an interface that panics on out-of-band reads). Lossless
// compression reproduces raw ring gossip bit for bit; the gossip-compression
// ablation (cmd/figures -gossip, cmd/sweep -ablation gossip) quantifies
// CHOCO against the shared-reference centralized baseline at several ring
// sizes and keep-ratios.
//
// Gossip is graph-native: internal/graph supplies a first-class Graph
// (ring, torus, random-regular, expander, star, complete, plus seeded
// time-varying B-connected sequences) that comm.Topology adapts and both
// gossip paths consume uniformly via Neighbors/MixOrder/MixWeights. The
// mixing matrix W is Metropolis-Hastings — symmetric, doubly stochastic,
// W_ii > 0 on every connected graph — and rows that are structurally
// uniform return nil weights and MUST be mixed as (ordered sum)/count,
// one division, which is how ring-over-graph reproduces the legacy ring
// arithmetic bit for bit. Each Graph carries its spectral gap 1-lambda_2
// (deflated power iteration at construction); Config.AdaptGossipGamma
// sets the CHOCO consensus step per active graph as
// clamp(sqrt(gap), 0.05, 1) — fast mixers take near-full steps, slow
// mixers damp toward CHOCO's small-gamma regime — the same
// measure-then-adapt move AdaComm makes for tau. On the runtime side,
// delaymodel.Model.EdgeLinks prices individual links so the slowest
// ACTIVE edge gates each gossip round (unset: bit-identical to the
// per-worker path), which is what lets a sparse graph genuinely win
// wall-clock: the topology ablation (cmd/figures -topology, cmd/sweep
// -ablation topology) shows a 4x4 torus beating BOTH the ring and full
// averaging on time-to-loss under a single 10x edge, because it routes
// around the slow link while mixing with an O(1/n) spectral gap. Parse
// specs: "graph:ring", "torus:4x4", "regular:4@seed", "expander",
// "varying:ring,star@B=5" (cmd/adacomm -topology, -edge-links,
// -adapt-gossip-gamma).
//
// All model/gradient exchange routes through the unified communication
// layer in internal/comm: a Communicator (AllReduce / Push / Pull with
// per-message payload accounting) whose aggregation hot path index-merges
// sparse messages in O(k*m) instead of O(dim*m), plus routing topologies
// (all-gather, ring, tree, star) whose transfer schedules the delay model
// prices. internal/delaymodel supports per-worker heterogeneous
// Link{Latency, Bandwidth} — stragglers slow in bytes/s, not compute — with
// the slowest link gating each round; parameter-server pulls are priced and
// delta-compressed against each worker's last pulled reconstruction. See
// examples/heterogeneous and cmd/adacomm's -topology / -links flags.
//
// The adaptive controllers are heterogeneity-aware end to end: the engines
// report observed timing back to the controllers — cluster.RoundInfo carries
// the per-round communication/compute wall-clock split and the per-worker
// transfer times of each round's schedule (delaymodel.SampleDScheduleInto),
// and paramserver.RoundInfo the per-worker exchange transfer times. With
// core.Config.LinkAware, AdaComm (and the joint AdaCommCompress) scales its
// proposed tau by sqrt of the measured comm/compute ratio alpha, so slow
// links hold tau higher, per Theorem 2's tau* ~ sqrt(D) scaling; with
// paramserver.AdaSyncConfig.LinkAware, AdaSync caps K at the number of links
// within a cutoff of the fastest (waiting only for the K fastest links, the
// Kas Hanna et al. 2022 direction). Every LinkAware-off trajectory is pinned
// bit-identical to the static rules by golden tests; the link-aware ablation
// in internal/experiments quantifies the win on a 10x bandwidth straggler.
// See cmd/adacomm's -link-aware flag and cmd/figures' -bytes/-bandwidth
// flags for the size-aware Fig 5/7/8 Monte-Carlo variants.
//
// Beyond the lock-step engines, internal/events + cluster.NewAsync form an
// event-driven execution mode: a deterministic discrete-event scheduler
// (priority queue over per-client virtual clocks, seeded tie-breaking, so
// the event trace is a pure function of the seed at any GOMAXPROCS)
// replaces the round barrier. Each update aggregates the FIRST K arrivals
// (paramserver.ArrivalPolicy — the same K-of-m rule AdaSync's link-aware
// cap uses), staleness-weighted by (1+s)^-pow with arrivals beyond
// MaxStaleness discarded; stragglers overlap later rounds instead of
// gating them. Client sharding makes the population a memory non-issue:
// idle clients are a pair of RNG streams, in-flight clients a compressed
// wire message (internal/compress, priced at dispatch via the size-aware
// delay model), and only one compute replica is ever materialized — local
// numerics run eagerly at dispatch (they depend only on the dispatch-time
// global model and the client's own streams) while delivery is
// event-scheduled, giving true stale-update semantics with memory
// proportional to K, not N. examples/federated runs 1024 non-IID clients
// at K=32 in two replicas plus four scratch vectors; the async ablation
// (cmd/figures -async, cmd/sweep -ablation async, cmd/adacomm -async
// -participation -clients) shows K-of-m beating the full barrier on
// simulated wall-clock under a 10x straggler. delaymodel.Model.Jitter
// gives every worker a persistent seeded compute-speed factor so arrival
// order is non-degenerate on homogeneous configurations (nil = every
// legacy trace bit-identical).
//
// The training hot path is deterministic-parallel at three layers. (1) The
// lock-step engine fans each round's per-worker local-update loops across a
// bounded goroutine pool (cluster.Config.ComputeWorkers, default
// GOMAXPROCS): workers are independent between averaging points and the
// reduce always runs in fixed worker order, so pool width cannot change a
// bit of any trajectory (pinned by golden and determinism tests). (2) The
// nn layers are allocation-free in steady state: every layer owns a scratch
// arena — the matrices it returns from Forward/Backward, reused across
// steps — so a training step performs zero heap allocations once buffers
// are warm; the arena rule is one arena per layer, layers belong to one
// Network, and a Network is never shared across goroutines (each simulated
// worker owns a replica). (3) Experiment grids (figure baselines,
// ablations, compression cells, link-aware configs) run their independent
// configurations concurrently on internal/experiments' pool (-workers on
// cmd/figures and cmd/sweep), with byte-identical output at any width.
//
// The tensor matmul kernels (Gemm/GemmTA/GemmTB/Gemv/GemvT) are
// cache-blocked and register-tiled under a bit-exactness contract: every
// output element starts from its beta-scaled destination and accumulates
// its reduction terms in ascending index order, one separately-rounded
// multiply and add per term — the exact arithmetic of the naive triple
// loop, which ships alongside as the parity oracle (GemmNaive etc.,
// internal/tensor/parity_test.go). Within that contract the blocked
// kernels reorder only the loop NEST (row tiles x kc-panels), and on
// amd64 the alpha==1 Gemm hot path drops into a packed SSE2 micro-kernel
// (gemm_amd64.s) whose vector lanes hold independent C elements — two
// multiply-adds retired per cycle instead of one, ~3x over naive at
// 256x256, with FMA deliberately off the table (fused rounding would
// change bits). tensor.SetWorkers(n) optionally fans output-row panels
// across goroutines; panels never share output rows, so results are
// bit-identical at every worker count (raced in CI). Separately,
// compress.Spec gained a wire format (WireFloat32, spec modifier "+f32",
// -wire float32 on the cmds): payload values are narrowed to float32 on
// the wire — halving every byte-priced message — while model state stays
// float64; the wire ablation (cmd/figures -wire float32) quantifies the
// loss-vs-runtime payoff on a bandwidth-constrained link.
//
// Robustness is a first-class axis: internal/faults defines a seeded,
// declarative fault schedule (faults.Parse — "crash:W@rR", "blip:W@rR1-R2",
// "slow:WxF@rR1-R2", "drop:P") injecting permanent crashes, crash-recover
// blips, slow-down episodes, and retried message drops into EVERY engine:
// the lock-step cluster (serial and pooled backends), the event-driven
// engine, and the parameter server (-faults on cmd/adacomm, cmd/figures,
// cmd/sweep). Membership is dynamic end to end — comm.Communicator carries
// the active-set view (SetActive/ActiveCount; inactive endpoints are
// rejected, inactive contributions skipped), full and elastic averaging
// renormalize over survivors, gossip mixes over the induced active subgraph
// (graph.Subgraph re-derives Metropolis weights and the spectral gap on the
// active block, so AdaptGossipGamma re-adapts; a disconnected survivor set
// damps gamma to its floor), and the async engine expires in-flight work
// from crashed clients. A rejoining worker reconciles by pulling a priced
// dense delta and snapping exactly to the shared state (CHOCO estimates
// re-pin so its next wire message is a delta from common ground); in the
// event-driven and parameter-server modes the dispatch-time pull IS the
// reconcile. The schedule is a pure function of (spec, seed, round) and
// consumes no RNG from the delay/jitter streams, so every zero-fault config
// stays bit-identical to its golden; the churn ablation (cmd/figures
// -churn, cmd/sweep -ablation churn) pins that under 20% mid-run
// crash-recover churn plus drops every strategy completes without deadlock
// and degrades gracefully on time-to-loss.
//
// Local update rules are a first-class layer: internal/opt defines the
// Optimizer interface (Step, enumerable state vectors with per-vector sync
// policies, SyncReset at averaging points) with plain SGD, heavy-ball and
// Nesterov momentum, and Local Adam/AdamW; every engine — both lock-step
// backends, the event-driven engine, and the parameter server — steps
// through it (cluster.Config.Opt, AsyncConfig.Opt, -optimizer on the cmds;
// zero values stay bit-identical to every pre-optimizer golden, and the
// legacy Momentum/BlockMomentum shorthands map onto the layer bit for bit).
// Adam's second moments are an ablation axis: worker-local, or SYNCED
// through the averaging fabric (Opt.SyncedMoments) — synced vectors extend
// every averaged payload from dim to dim+len(state), riding the SAME
// compressed, narrowed, byte-priced CHOCO gossip messages the parameters
// do, and rejoin reconciliation restores them so a recovered worker matches
// a never-crashed one bit for bit, step clocks included. At sync points,
// cluster.Config.GlobalMomentum generalizes BlockMomentum to every strategy
// (SlowMo-style slow momentum: one shared buffer under full averaging,
// per-node buffers under gossip/elastic, renormalized over the surviving
// active set under churn); the async engine instead takes a SERVER-side
// optimizer (AsyncConfig.ServerOpt, FedOpt-style — per-client adaptive
// state is rejected as Theta(clients*dim)), as does the parameter server.
// AdaComm's tau rule re-derives its eta coupling under momentum via the
// effective learning rate eta/(1-beta), and the norm-decay width rule
// (compress.NormDecayBits, shared by AdaCommCompress and AdaSync) grows a
// QSGD quantizer one bit per halving of the observed gradient norm. The
// optimizer ablation (cmd/figures -optimizer, cmd/sweep -ablation
// optimizer, -adam-beta2/-global-momentum) puts every rule on one
// error-runtime table, including a wire-synced-Adam row through CHOCO over
// a float32 wire.
//
// Perf numbers are recorded per PR as BENCH_<n>.json via cmd/bench, and
// CI gates on them: `go run ./cmd/bench -check BENCH_<n>.json` fails on
// wall-clock regressions beyond a tolerance, on any allocs/op increase,
// and on the blocked/naive Gemm ratio dropping below its floor.
package repro
