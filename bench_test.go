package repro

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (BenchmarkFig*/BenchmarkTable*), each running the
// corresponding experiment end-to-end at reduced (ScaleQuick) size so the
// whole suite completes in minutes; `go run ./cmd/figures` regenerates the
// same artifacts at full scale. Micro-benchmarks for the hot kernels
// (gemm, model forward/backward, a PASGD round) follow at the bottom;
// the communication-layer aggregation benchmarks (sparse index-merge vs
// dense accumulation on 1M-coordinate vectors) live next to their subject
// in internal/comm/bench_test.go and internal/compress/bench_test.go, and
// run with the same `go test -bench . ./...` invocation.

import (
	"io"
	"testing"

	"repro/internal/cluster"
	"repro/internal/compress"
	"repro/internal/data"
	"repro/internal/delaymodel"
	"repro/internal/experiments"
	"repro/internal/nn"
	optpkg "repro/internal/opt"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// ---------------------------------------------------------------------------
// Figure/table regenerators.
// ---------------------------------------------------------------------------

func benchComparison(b *testing.B, spec experiments.TrainSpec) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cmp := experiments.RunComparison(spec)
		cmp.Print(io.Discard)
	}
}

func BenchmarkFig1ErrorRuntimeConcept(b *testing.B) {
	benchComparison(b, experiments.Fig1Spec(experiments.ScaleQuick))
}

func BenchmarkFig4SpeedupFormula(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig4()
		experiments.PrintFig4(io.Discard, rows)
	}
}

func BenchmarkFig5RuntimeDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig5(50000, 1)
		experiments.PrintFig5(io.Discard, res)
	}
}

func BenchmarkFig6TheoreticalBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves := experiments.Fig6(200)
		experiments.PrintFig6(io.Discard, curves)
	}
}

func BenchmarkFig7AdaptiveSchedule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig7(experiments.Fig6Constants(), 60, 10, 64)
		experiments.PrintFig7(io.Discard, res)
	}
}

func BenchmarkFig8CommComputeBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig8(4, 2)
		experiments.PrintFig8(io.Discard, rows)
	}
}

func BenchmarkFig9VGGFixedLR(b *testing.B) {
	benchComparison(b, experiments.Fig9Spec(10, false, experiments.ScaleQuick))
}

func BenchmarkFig9VGGVariableLR(b *testing.B) {
	benchComparison(b, experiments.Fig9Spec(10, true, experiments.ScaleQuick))
}

func BenchmarkFig9VGGCifar100(b *testing.B) {
	benchComparison(b, experiments.Fig9Spec(100, false, experiments.ScaleQuick))
}

func BenchmarkFig10ResNetFixedLR(b *testing.B) {
	benchComparison(b, experiments.Fig10Spec(10, false, experiments.ScaleQuick))
}

func BenchmarkFig10ResNetVariableLR(b *testing.B) {
	benchComparison(b, experiments.Fig10Spec(10, true, experiments.ScaleQuick))
}

func BenchmarkFig11BlockMomentumVGG(b *testing.B) {
	benchComparison(b, experiments.Fig11Spec(experiments.ArchVGG, 10, experiments.ScaleQuick))
}

func BenchmarkFig11BlockMomentumResNet(b *testing.B) {
	benchComparison(b, experiments.Fig11Spec(experiments.ArchResNet, 10, experiments.ScaleQuick))
}

func BenchmarkFig12VGG8Workers(b *testing.B) {
	benchComparison(b, experiments.Fig12Spec(10, true, experiments.ScaleQuick))
}

func BenchmarkFig13ResNet8Workers(b *testing.B) {
	benchComparison(b, experiments.Fig13Spec(10, true, experiments.ScaleQuick))
}

func BenchmarkFig14LocalVsSyncAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig14(experiments.ScaleQuick, 5)
		experiments.PrintFig14(io.Discard, res)
	}
}

func BenchmarkTable1TestAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1(experiments.ScaleQuick)
		experiments.PrintTable1(io.Discard, rows)
	}
}

// Ablation benches (DESIGN.md Sec 4 design choices).

func BenchmarkAblationTauGrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.PrintTauGrid(io.Discard, experiments.TauGridAblation(experiments.ScaleQuick))
	}
}

func BenchmarkAblationGamma(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.PrintGammaAblation(io.Discard, experiments.GammaAblation(experiments.ScaleQuick))
	}
}

func BenchmarkAblationCoupling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.PrintCouplingAblation(io.Discard, experiments.CouplingAblation(experiments.ScaleQuick))
	}
}

func BenchmarkAblationInterval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.PrintIntervalAblation(io.Discard, experiments.IntervalAblation(experiments.ScaleQuick))
	}
}

func BenchmarkAblationStrategy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.PrintStrategyAblation(io.Discard, experiments.StrategyAblation(experiments.ScaleQuick))
	}
}

func BenchmarkExtensionAdaSync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.PrintAdaSync(io.Discard, experiments.AdaSyncExperiment(experiments.ScaleQuick))
	}
}

func BenchmarkAblationDelayDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.PrintDelayAblation(io.Discard, experiments.DelayAblation(experiments.ScaleQuick))
	}
}

// ---------------------------------------------------------------------------
// Micro-benchmarks for the hot kernels.
// ---------------------------------------------------------------------------

func BenchmarkGemm64(b *testing.B) {
	a := tensor.NewMatrix(64, 64)
	bb := tensor.NewMatrix(64, 64)
	c := tensor.NewMatrix(64, 64)
	for i := range a.Data {
		a.Data[i] = float64(i % 7)
		bb.Data[i] = float64(i % 5)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Gemm(1, a, bb, 0, c)
	}
}

func benchModelStep(b *testing.B, net *nn.Network, dim int) {
	b.Helper()
	net.InitParams(rng.New(1))
	r := rng.New(2)
	batch := data.Batch{X: tensor.NewMatrix(16, dim), Y: make([]int, 16)}
	for i := 0; i < 16; i++ {
		for j := 0; j < dim; j++ {
			batch.X.Set(i, j, r.NormFloat64())
		}
		batch.Y[i] = r.Intn(4)
	}
	grad := make([]float64, net.ParamLen())
	opt := optpkg.New(optpkg.Config{LR: 0.05}, net.ParamLen())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.LossGrad(batch, grad)
		opt.Step(net.Params(), grad)
	}
}

func BenchmarkStepLogistic(b *testing.B) {
	benchModelStep(b, nn.NewLogisticRegression(64, 4), 64)
}

func BenchmarkStepMLP(b *testing.B) {
	benchModelStep(b, nn.NewMLP(64, []int{64, 32}, 4), 64)
}

func BenchmarkStepVGGNano(b *testing.B) {
	shape := data.ImageShape{Channels: 3, Height: 8, Width: 8}
	benchModelStep(b, nn.NewVGGNano(shape, 4), shape.Len())
}

func BenchmarkStepResNetNano(b *testing.B) {
	shape := data.ImageShape{Channels: 3, Height: 8, Width: 8}
	benchModelStep(b, nn.NewResNetNano(shape, 4), shape.Len())
}

func benchPASGDRound(b *testing.B, computeWorkers int) {
	b.Helper()
	w := experiments.BuildWorkload(experiments.ArchLogistic, 4, 4, experiments.ScaleQuick, 3)
	e := w.Engine(cluster.Config{
		BatchSize: 8, MaxIters: 1 << 30, EvalEvery: 1 << 30,
		ComputeWorkers: computeWorkers, Seed: 4,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.StepLocal(10, 0.1)
		e.SyncNow()
	}
}

func BenchmarkPASGDRound(b *testing.B) { benchPASGDRound(b, 1) }

// BenchmarkPASGDRoundPool4 runs the same round with the local-update phase
// fanned across 4 goroutines — bit-identical results; wall-clock gains
// require as many free cores.
func BenchmarkPASGDRoundPool4(b *testing.B) { benchPASGDRound(b, 4) }

// Strategy-round benchmarks: one gossip/elastic synchronization (10 local
// steps + SyncNow), raw and compressed. These pin the per-sync allocation
// behavior of the mixing strategies — their scratch is engine-owned, so
// steady-state rounds must stay allocation-free like the full-averaging
// round above.
func benchStrategyRound(b *testing.B, strat cluster.Strategy, spec compress.Spec) {
	b.Helper()
	w := experiments.BuildWorkload(experiments.ArchLogistic, 4, 4, experiments.ScaleQuick, 3)
	e := w.Engine(cluster.Config{
		BatchSize: 8, MaxIters: 1 << 30, EvalEvery: 1 << 30,
		ComputeWorkers: 1, Strategy: strat, Compress: spec, Seed: 4,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.StepLocal(10, 0.1)
		e.SyncNow()
	}
}

func BenchmarkRingGossipRound(b *testing.B) {
	benchStrategyRound(b, cluster.RingGossip, compress.Spec{})
}

func BenchmarkRingGossipRoundCompressed(b *testing.B) {
	benchStrategyRound(b, cluster.RingGossip,
		compress.Spec{Kind: compress.KindTopK, Ratio: 0.25, ErrorFeedback: true})
}

func BenchmarkElasticRound(b *testing.B) {
	benchStrategyRound(b, cluster.ElasticAveraging, compress.Spec{})
}

func BenchmarkElasticRoundCompressed(b *testing.B) {
	benchStrategyRound(b, cluster.ElasticAveraging,
		compress.Spec{Kind: compress.KindTopK, Ratio: 0.25, ErrorFeedback: true})
}

func BenchmarkRuntimeSampling(b *testing.B) {
	dm := delaymodel.New(16, rng.Exponential{MeanVal: 1}, rng.Constant{Value: 1},
		delaymodel.ConstantScaling{})
	r := rng.New(5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dm.SamplePerIteration(10, r)
	}
}

func BenchmarkCompressionGrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunCompressionGrid(experiments.DefaultCompressionGrid(experiments.ScaleQuick))
		experiments.PrintCompressionGrid(io.Discard, res)
	}
}

func BenchmarkCompressionTradeoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.PrintCompressionTradeoff(io.Discard, experiments.CompressionTradeoff(experiments.ScaleQuick))
	}
}
